#!/usr/bin/env bash
# End-to-end smoke of the distributed efmd deployment: build the daemon,
# start two -worker processes and one -coordinator over them, submit a
# divide-and-conquer job through the HTTP API, check its fingerprint
# against a direct library run, kill -9 one worker, submit another job
# against the degraded fleet, and confirm the coordinator's /varz
# carries the per-worker dispatch counters.
#
# Needs curl and jq. Exits non-zero on the first failed assertion.
set -euo pipefail

PORT="${EFMD_PORT:-9178}"
WPORT1="${EFMD_WORKER_PORT1:-9179}"
WPORT2="${EFMD_WORKER_PORT2:-9180}"
BASE="http://127.0.0.1:${PORT}"
WORKDIR="$(mktemp -d)"
PIDS=()
cleanup() {
  for p in "${PIDS[@]}"; do kill "$p" 2>/dev/null || true; done
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

cd "$(dirname "$0")/.."

echo "== build"
go build -o "$WORKDIR/efmd" ./cmd/efmd
go build -o "$WORKDIR/efmcalc" ./cmd/efmcalc

echo "== direct library run (reference)"
"$WORKDIR/efmcalc" -model toy -algorithm dnc -qsub 2 -json > "$WORKDIR/direct.json"
REF_FP=$(jq -r .fingerprint "$WORKDIR/direct.json")
REF_MODES=$(jq -r .modes "$WORKDIR/direct.json")
echo "   $REF_MODES modes, fingerprint $REF_FP"

echo "== start 2 workers + coordinator"
"$WORKDIR/efmd" -worker -addr "127.0.0.1:$WPORT1" &
WORKER1_PID=$!
PIDS+=("$WORKER1_PID")
"$WORKDIR/efmd" -worker -addr "127.0.0.1:$WPORT2" &
PIDS+=($!)
"$WORKDIR/efmd" -coordinator -peers "127.0.0.1:$WPORT1,127.0.0.1:$WPORT2" \
  -addr "127.0.0.1:$PORT" -cache-mb 0 &
PIDS+=($!)
for i in $(seq 1 100); do
  curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
  [ "$i" = 100 ] && fail "coordinator never became healthy"
  sleep 0.1
done

echo "== submit dnc job to the full fleet"
ID=$(curl -fsS "$BASE/v1/jobs" -d '{"model":"toy","options":{"algorithm":"dnc","qsub":2}}' | jq -r .id)
[ -n "$ID" ] && [ "$ID" != null ] || fail "no job id in submit response"
LAST_STATE=$(curl -fsS "$BASE/v1/jobs/$ID/events" | tail -1 | jq -r .state)
[ "$LAST_STATE" = done ] || fail "fleet job ended $LAST_STATE, want done"
GOT_FP=$(curl -fsS "$BASE/v1/jobs/$ID/result" | jq -r .summary.fingerprint)
[ "$GOT_FP" = "$REF_FP" ] || fail "distributed fingerprint $GOT_FP != direct $REF_FP"
echo "   job $ID done, fingerprint matches"

echo "== /varz shows remote dispatch"
curl -fsS "$BASE/varz" > "$WORKDIR/varz1.json"
REMOTE=$(jq -r .counters.remote_classes "$WORKDIR/varz1.json")
[ "$REMOTE" -gt 0 ] || fail "remote_classes is $REMOTE after a distributed job"
NWORKERS=$(jq -r '.workers | length' "$WORKDIR/varz1.json")
[ "$NWORKERS" = 2 ] || fail "/varz lists $NWORKERS workers, want 2"
DISPATCHED=$(jq -r '[.workers[].dispatched] | add' "$WORKDIR/varz1.json")
[ "$DISPATCHED" -gt 0 ] || fail "no classes dispatched to any worker"
echo "   $REMOTE classes on $NWORKERS workers ($DISPATCHED dispatched)"

echo "== protocol 2 negotiated, wire bytes below payload bytes"
PROTO=$(jq -r '[.workers[].proto] | max' "$WORKDIR/varz1.json")
[ "$PROTO" = 2 ] || fail "fleet negotiated protocol $PROTO, want 2"
PAYLOAD=$(jq -r .remote_payload_bytes "$WORKDIR/varz1.json")
WIRE=$(jq -r .remote_wire_bytes "$WORKDIR/varz1.json")
[ "$PAYLOAD" -gt 0 ] || fail "remote_payload_bytes is $PAYLOAD after a distributed job"
[ "$WIRE" -gt 0 ] || fail "remote_wire_bytes is $WIRE after a distributed job"
[ "$WIRE" -lt "$PAYLOAD" ] || fail "wire bytes $WIRE not below payload bytes $PAYLOAD (interning/compression inert)"
echo "   protocol $PROTO, $WIRE wire bytes for $PAYLOAD payload bytes"

echo "== kill -9 one worker, run against the degraded fleet"
kill -9 "$WORKER1_PID" 2>/dev/null || true
wait "$WORKER1_PID" 2>/dev/null || true
# A different tolerance forks the request key: no coalescing, no cache.
ID2=$(curl -fsS "$BASE/v1/jobs" -d '{"model":"toy","options":{"algorithm":"dnc","qsub":2,"tolerance":1e-8}}' | jq -r .id)
LAST_STATE=$(curl -fsS "$BASE/v1/jobs/$ID2/events" | tail -1 | jq -r .state)
[ "$LAST_STATE" = done ] || fail "degraded-fleet job ended $LAST_STATE, want done"
GOT_FP2=$(curl -fsS "$BASE/v1/jobs/$ID2/result" | jq -r .summary.fingerprint)
[ "$GOT_FP2" = "$REF_FP" ] || fail "degraded-fleet fingerprint $GOT_FP2 != direct $REF_FP"
DEAD=$(curl -fsS "$BASE/varz" | jq -r '[.workers[] | select(.alive == false)] | length')
[ "$DEAD" -ge 1 ] || fail "/varz still shows every worker alive after the kill"
echo "   job $ID2 done on the surviving worker, fingerprint matches ($DEAD worker marked dead)"

echo "PASS: efmd cluster smoke"
