#!/usr/bin/env bash
# End-to-end smoke of the efmd job service: build the daemon and the
# CLI, start the daemon, submit a job over HTTP, follow its event
# stream, check the result fingerprint against a direct library run
# (efmcalc -json emits the same summary schema), resubmit to hit the
# content-addressed cache without a driver run, exercise cancellation,
# and shut down gracefully on SIGTERM.
#
# Needs curl and jq. Exits non-zero on the first failed assertion.
set -euo pipefail

PORT="${EFMD_PORT:-9178}"
BASE="http://127.0.0.1:${PORT}"
WORKDIR="$(mktemp -d)"
DAEMON_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

cd "$(dirname "$0")/.."

echo "== build"
go build -o "$WORKDIR/efmd" ./cmd/efmd
go build -o "$WORKDIR/efmcalc" ./cmd/efmcalc

echo "== direct library run (reference)"
"$WORKDIR/efmcalc" -model toy -json > "$WORKDIR/direct.json"
REF_FP=$(jq -r .fingerprint "$WORKDIR/direct.json")
REF_MODES=$(jq -r .modes "$WORKDIR/direct.json")
echo "   $REF_MODES modes, fingerprint $REF_FP"

echo "== start daemon on :$PORT"
"$WORKDIR/efmd" -addr "127.0.0.1:$PORT" -concurrency 2 &
DAEMON_PID=$!
for i in $(seq 1 100); do
  curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
  [ "$i" = 100 ] && fail "daemon never became healthy"
  sleep 0.1
done

echo "== submit job over HTTP"
ID=$(curl -fsS "$BASE/v1/jobs" -d '{"model":"toy"}' | jq -r .id)
[ -n "$ID" ] && [ "$ID" != null ] || fail "no job id in submit response"
echo "   job $ID"

echo "== stream events until terminal"
curl -fsS "$BASE/v1/jobs/$ID/events" > "$WORKDIR/events.ndjson"
FIRST_STATE=$(head -1 "$WORKDIR/events.ndjson" | jq -r .state)
LAST_STATE=$(tail -1 "$WORKDIR/events.ndjson" | jq -r .state)
[ "$FIRST_STATE" = queued ] || fail "stream opened with state $FIRST_STATE, want queued"
[ "$LAST_STATE" = done ] || fail "stream ended with state $LAST_STATE, want done"
echo "   $(wc -l < "$WORKDIR/events.ndjson") events, $FIRST_STATE -> $LAST_STATE"

echo "== fetch result, compare with direct run"
curl -fsS "$BASE/v1/jobs/$ID/result?supports=1" > "$WORKDIR/result.json"
GOT_FP=$(jq -r .summary.fingerprint "$WORKDIR/result.json")
GOT_MODES=$(jq -r .summary.modes "$WORKDIR/result.json")
N_SUPPORTS=$(jq -r '.supports | length' "$WORKDIR/result.json")
[ "$GOT_FP" = "$REF_FP" ] || fail "service fingerprint $GOT_FP != direct $REF_FP"
[ "$GOT_MODES" = "$REF_MODES" ] || fail "service modes $GOT_MODES != direct $REF_MODES"
[ "$N_SUPPORTS" = "$REF_MODES" ] || fail "$N_SUPPORTS supports for $REF_MODES modes"
echo "   fingerprints match"

echo "== resubmit: cache hit, no driver run"
RUNS_BEFORE=$(curl -fsS "$BASE/varz" | jq -r .counters.runs_started)
HIT=$(curl -fsS "$BASE/v1/jobs" -d '{"model":"toy","options":{"algorithm":"dnc","nodes":2}}')
[ "$(echo "$HIT" | jq -r .cached)" = true ] || fail "resubmission not served from cache: $HIT"
[ "$(echo "$HIT" | jq -r .state)" = done ] || fail "cache-hit job not done"
[ "$(echo "$HIT" | jq -r .fingerprint)" = "$REF_FP" ] || fail "cached fingerprint diverged"
RUNS_AFTER=$(curl -fsS "$BASE/varz" | jq -r .counters.runs_started)
[ "$RUNS_BEFORE" = "$RUNS_AFTER" ] || fail "cache hit started a driver run ($RUNS_BEFORE -> $RUNS_AFTER)"
[ "$(curl -fsS "$BASE/varz" | jq -r .counters.cache_hits)" = 1 ] || fail "cache_hits counter != 1"
echo "   served from cache (runs_started stayed $RUNS_AFTER; execution-shape options did not fork the key)"

echo "== cancel a job"
CID=$(curl -fsS "$BASE/v1/jobs" -d '{"model":"toy","options":{"tolerance":1e-8}}' | jq -r .id)
curl -fsS -X DELETE "$BASE/v1/jobs/$CID" >/dev/null
CSTATE=$(curl -fsS "$BASE/v1/jobs/$CID/events" | tail -1 | jq -r .state)
case "$CSTATE" in
  canceled|done) echo "   job $CID ended $CSTATE" ;; # done if it outraced the DELETE
  *) fail "canceled job ended in state $CSTATE" ;;
esac

echo "== on-demand stream: backend=ondemand k=3 delivers 3 mode events"
OID=$(curl -fsS "$BASE/v1/jobs" -d '{"model":"toy","options":{"backend":"ondemand","k":3}}' | jq -r .id)
[ -n "$OID" ] && [ "$OID" != null ] || fail "no job id for the on-demand submission"
curl -fsS "$BASE/v1/jobs/$OID/events" > "$WORKDIR/odevents.ndjson"
N_MODE=$(jq -rs '[.[] | select(.type == "mode")] | length' "$WORKDIR/odevents.ndjson")
[ "$N_MODE" = 3 ] || fail "on-demand k=3 streamed $N_MODE mode events, want 3"
RANKS=$(jq -rs '[.[] | select(.type == "mode") | .rank] | join(",")' "$WORKDIR/odevents.ndjson")
[ "$RANKS" = "1,2,3" ] || fail "mode events out of rank order: $RANKS"
LAST_MODE_SEQ=$(jq -rs '[.[] | select(.type == "mode") | .seq] | max' "$WORKDIR/odevents.ndjson")
TERM_SEQ=$(tail -1 "$WORKDIR/odevents.ndjson" | jq -r .seq)
[ "$(tail -1 "$WORKDIR/odevents.ndjson" | jq -r .state)" = done ] || fail "on-demand job did not finish done"
[ "$LAST_MODE_SEQ" -lt "$TERM_SEQ" ] || fail "mode events did not precede the terminal event"
OD_MODES=$(curl -fsS "$BASE/v1/jobs/$OID/result" | jq -r .summary.modes)
[ "$OD_MODES" = 3 ] || fail "on-demand result holds $OD_MODES modes, want 3"
echo "   3 mode events (ranks $RANKS) before the terminal event"

echo "== on-demand cancel mid-stream resolves in under a second"
CID2=$(curl -fsS "$BASE/v1/jobs" -d '{"model":"yeast1","options":{"backend":"ondemand","k":100000}}' | jq -r .id)
curl -fsS "$BASE/v1/jobs/$CID2/events" > "$WORKDIR/cancel.ndjson" &
STREAM_PID=$!
for i in $(seq 1 100); do
  grep -q '"type":"mode"' "$WORKDIR/cancel.ndjson" 2>/dev/null && break
  [ "$i" = 100 ] && fail "no mode event arrived on yeast1 within 10s"
  sleep 0.1
done
T0=$(date +%s%N)
curl -fsS -X DELETE "$BASE/v1/jobs/$CID2" >/dev/null
wait "$STREAM_PID" || true
T1=$(date +%s%N)
ELAPSED_MS=$(( (T1 - T0) / 1000000 ))
CSTATE2=$(tail -1 "$WORKDIR/cancel.ndjson" | jq -r .state)
[ "$CSTATE2" = canceled ] || fail "mid-stream cancel ended in state $CSTATE2"
[ "$ELAPSED_MS" -lt 1000 ] || fail "cancel took ${ELAPSED_MS}ms, want < 1000ms"
echo "   canceled mid-stream in ${ELAPSED_MS}ms"

echo "== graceful shutdown on SIGTERM"
kill -TERM "$DAEMON_PID"
for i in $(seq 1 100); do
  kill -0 "$DAEMON_PID" 2>/dev/null || break
  [ "$i" = 100 ] && fail "daemon did not exit after SIGTERM"
  sleep 0.1
done
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

echo "PASS: efmd smoke"
