// Partition: demonstrates the divide-and-conquer decomposition of
// section III on the toy network — the EFM set splits into four disjoint
// classes across the reversible reactions (r6r, r8r), each computed by
// an independent run stopped early via Proposition 1, and their union is
// exactly the full EFM set.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"elmocomp"
)

func main() {
	net, err := elmocomp.Builtin("toy")
	if err != nil {
		log.Fatal(err)
	}

	// Reference: the full serial run.
	serial, err := elmocomp.ComputeEFMs(net, elmocomp.Config{})
	if err != nil {
		log.Fatal(err)
	}
	want := supportSet(serial)
	fmt.Printf("serial run: %d EFMs, %d candidate modes\n\n",
		serial.Len(), serial.CandidateModes)

	// Divide and conquer across the paper's partition (r6r, r8r) —
	// section III-A works these four subproblems out by hand.
	res, err := elmocomp.ComputeEFMs(net, elmocomp.Config{
		Algorithm: elmocomp.DivideAndConquer,
		Partition: []string{"r6r", "r8r"},
		Nodes:     2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("divide-and-conquer classes (paper section III-A):")
	for _, sub := range res.Subproblems {
		fmt.Printf("  %-18s -> %d EFMs (%d candidates)\n",
			sub.Pattern, sub.EFMs, sub.CandidateModes)
	}
	fmt.Printf("union: %d EFMs, %d candidate modes\n\n", res.Len(), res.CandidateModes)

	// The decomposition invariants.
	got := supportSet(res)
	if len(got) != len(want) {
		log.Fatalf("union has %d EFMs, serial %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			log.Fatalf("union is missing EFM %s", k)
		}
	}
	total := 0
	for _, sub := range res.Subproblems {
		total += sub.EFMs
	}
	if total != res.Len() {
		log.Fatalf("classes overlap: %d across classes vs %d in union", total, res.Len())
	}
	fmt.Println("verified: classes are pairwise disjoint and their union equals the serial EFM set")
}

func supportSet(res *elmocomp.Result) map[string]bool {
	out := make(map[string]bool, res.Len())
	for i := 0; i < res.Len(); i++ {
		names := res.SupportNames(i)
		sort.Strings(names)
		out[strings.Join(names, ",")] = true
	}
	return out
}
