// Yeastscan: the paper's motivating problem at laptop scale. Loads
// S. cerevisiae Metabolic Network I (62 metabolites × 78 reactions,
// Figures 3–4), shows the preprocessing reduction, and runs the first
// iterations of the Nullspace Algorithm while tracking the growth of the
// intermediate mode matrix — the memory wall that motivates the
// divide-and-conquer algorithm (the full network reaches hundreds of
// thousands of columns; Network II overflowed Blue Gene/P node memory
// two iterations before completion).
//
// Pass -rows to go deeper (each extra row roughly multiplies the work)
// or -full to run the complete enumeration.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"elmocomp/internal/core"
	"elmocomp/internal/model"
	"elmocomp/internal/nullspace"
	"elmocomp/internal/reduce"
	"elmocomp/internal/stats"
)

func main() {
	rows := flag.Int("rows", 22, "number of algorithm iterations to run")
	full := flag.Bool("full", false, "run the complete enumeration (minutes of CPU)")
	flag.Parse()

	net := model.YeastI()
	fmt.Printf("network %s: %d internal metabolites, %d reactions\n",
		net.Name, len(net.InternalMetabolites()), len(net.Reactions))

	red, err := reduce.Network(net, reduce.Options{MergeDuplicates: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reduction: %s (paper: 62x78 -> 35x55 with its pipeline)\n", red.Summary())

	p, err := nullspace.New(red.N, red.Reversibilities(), nullspace.Heuristics{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernel dimension %d -> %d iterations\n\n", p.D, p.Q()-p.D)

	last := p.D + *rows
	if *full || last > p.Q() {
		last = p.Q()
	}
	tb := stats.NewTable("intermediate mode matrix growth",
		"iter", "reaction", "rev", "candidates", "accepted", "modes", "memory")
	start := time.Now()
	res, err := core.Run(p, core.Options{
		LastRow: last,
		Trace: func(it core.IterStats, set *core.ModeSet) {
			tb.AddRow(it.Row-p.D+1, red.Cols[p.OrigCol(it.Reaction)].Name, it.Reversible,
				stats.Count(it.Pairs), stats.Count(it.Accepted),
				stats.Count(int64(it.ModesOut)), stats.Bytes(it.PeakBytes))
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	tb.Render(fmtWriter{})
	fmt.Printf("\nelapsed: %v, cumulative candidates: %s\n",
		time.Since(start).Round(time.Millisecond), stats.Count(res.TotalPairs()))
	if *full || last == p.Q() {
		fmt.Printf("elementary flux modes: %s\n", stats.Count(int64(len(core.CanonicalSupports(res)))))
	} else {
		fmt.Printf("stopped after %d of %d iterations; intermediate matrix holds %s modes\n",
			last-p.D, p.Q()-p.D, stats.Count(int64(res.Modes.Len())))
		fmt.Println("(re-run with -full for the complete enumeration, or use efmcalc -algorithm dnc)")
	}
}

type fmtWriter struct{}

func (fmtWriter) Write(b []byte) (int, error) {
	fmt.Print(string(b))
	return len(b), nil
}
