// Knockout study: one of the classic applications of elementary flux
// modes the paper's introduction cites (gene knockout studies, Trinh et
// al.). For every reaction of a small fermentation network we simulate a
// gene deletion by removing the reaction, recompute the EFMs, and report
// how the organism's capability to produce the target (ethanol) changes.
// Reactions whose deletion leaves no ethanol-producing mode are
// essential for the product; reactions whose deletion removes only
// byproduct pathways are metabolic-engineering candidates.
package main

import (
	"fmt"
	"log"
	"strings"

	"elmocomp"
)

// source is a stylized fermentation network: glucose in, ethanol /
// acetate / biomass out, with a branched interior.
const source = `
name ferment
upt : GLCext => G6P
gly1 : G6P => 2 PYR + 2 ATP
ppp : G6P => PYR + NADPH
pdc : PYR => ACA + CO2
adh : ACA + NADH <=> ETOH
etex : ETOH => ETOHext
ackA : ACA => ACE + ATP
acex : ACE => ACEext
nadh : PYR => NADH + ACA
atpm : ATP => ATPext
nadpx : NADPH => NADPHext
co2x : CO2 => CO2ext
`

func main() {
	base, err := elmocomp.ParseNetworkString(source)
	if err != nil {
		log.Fatal(err)
	}
	baseRes, err := elmocomp.ComputeEFMs(base, elmocomp.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wild type: %d elementary flux modes, %d produce ethanol\n\n",
		baseRes.Len(), countProducing(baseRes, "etex"))

	fmt.Printf("%-8s %12s %14s %s\n", "knockout", "total EFMs", "ethanol EFMs", "assessment")
	for _, victim := range base.ReactionNames() {
		if victim == "upt" || victim == "etex" {
			continue // trivial knockouts: substrate uptake / product export
		}
		mutantSrc := knockout(source, victim)
		mutant, err := elmocomp.ParseNetworkString(mutantSrc)
		if err != nil {
			log.Fatal(err)
		}
		res, err := elmocomp.ComputeEFMs(mutant, elmocomp.Config{})
		if err != nil {
			log.Fatal(err)
		}
		eth := countProducing(res, "etex")
		assessment := "tolerated"
		switch {
		case eth == 0:
			assessment = "ESSENTIAL for ethanol"
		case res.Len() > 0 && eth == res.Len():
			assessment = "couples all flux to ethanol (engineering target)"
		}
		fmt.Printf("%-8s %12d %14d %s\n", "Δ"+victim, res.Len(), eth, assessment)
	}
}

// countProducing counts modes whose support includes the given reaction.
func countProducing(res *elmocomp.Result, reaction string) int {
	n := 0
	for i := 0; i < res.Len(); i++ {
		for _, name := range res.SupportNames(i) {
			if name == reaction {
				n++
				break
			}
		}
	}
	return n
}

// knockout removes the named reaction's line from the network source.
func knockout(src, name string) string {
	var out []string
	for _, line := range strings.Split(src, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), name+" :") {
			continue
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}
