// Quickstart: compute the elementary flux modes of the paper's toy
// network (Figure 1) and print each pathway with its exact flux values.
package main

import (
	"fmt"
	"log"
	"strings"

	"elmocomp"
)

func main() {
	// The toy network of the paper's Figure 1: five internal
	// metabolites (A, B, C, D, P), nine reactions, two of them
	// reversible. Builtin("toy") ships with the library; any network
	// can be defined in the same text format:
	net, err := elmocomp.ParseNetworkString(`
name toy
r1 : Aext => A
r2 : A => C
r3 : C => D + P
r4 : P => Pext
r5 : A => B
r6r : B <=> C
r7 : B => 2 P
r8r : B <=> Bext
r9 : D => Dext
`)
	if err != nil {
		log.Fatal(err)
	}

	// The zero Config runs the serial Nullspace Algorithm with the
	// paper's defaults (network compression, rank test, row-ordering
	// heuristics).
	res, err := elmocomp.ComputeEFMs(net, elmocomp.Config{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: %d elementary flux modes (paper's matrix (7) has 8 columns)\n\n",
		net.Name(), res.Len())
	for i := 0; i < res.Len(); i++ {
		flux, err := res.Flux(i)
		if err != nil {
			log.Fatal(err)
		}
		var parts []string
		for _, name := range res.SupportNames(i) {
			parts = append(parts, fmt.Sprintf("%s=%s", name, flux[name].RatString()))
		}
		fmt.Printf("EFM %d: %s\n", i+1, strings.Join(parts, "  "))
	}

	// Every mode can be re-verified in exact rational arithmetic
	// against the original (unreduced) network.
	if err := res.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nall modes verified: N·r = 0 exactly, signs feasible, supports minimal")
}
