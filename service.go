package elmocomp

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"math/big"
	"sort"
	"strings"

	"elmocomp/internal/bitset"
	"elmocomp/internal/cluster"
	"elmocomp/internal/core"
	"elmocomp/internal/distrib"
	"elmocomp/internal/dnc"
	"elmocomp/internal/reduce"
)

// ErrCanceled matches errors from runs aborted through ComputeEFMsCancel
// or a canceled ComputeEFMsContext context, whichever driver was running.
var ErrCanceled = cluster.ErrCanceled

// ComputeEFMsCancel computes the elementary flux modes of the network,
// aborting the run as soon as cancel is closed. On cancellation the
// returned error matches ErrCanceled; the serial engine stops at the next
// iteration boundary, the distributed drivers trip their communicator
// group's abort latch and unwind every node promptly. A nil cancel
// behaves exactly like ComputeEFMs.
func ComputeEFMsCancel(n *Network, cfg Config, cancel <-chan struct{}) (*Result, error) {
	return computeEFMs(n, cfg, cancel, nil)
}

// ComputeEFMsContext is ComputeEFMsCancel driven by a context: the run
// aborts when ctx is done, with an error matching ErrCanceled.
func ComputeEFMsContext(ctx context.Context, n *Network, cfg Config) (*Result, error) {
	if ctx.Done() == nil {
		return computeEFMs(n, cfg, nil, nil)
	}
	return computeEFMs(n, cfg, ctx.Done(), nil)
}

// ComputeEFMsDistributed runs the divide-and-conquer driver with its
// class queue dispatched onto the pool's remote workers (the efmd
// coordinator role). Classes are routed by consistent hash over the
// request key so a repeated request lands on the same workers' class
// caches; idle workers steal from other workers' shares; a worker lost
// mid-class (crash, severed link, or per-class deadline) has its class
// re-enqueued and rerun elsewhere — or on an emergency local group when
// the whole fleet is gone — so worker failure degrades throughput, never
// correctness. The result is fingerprint-identical to the local drivers
// (the differential harness gates on exactly this).
//
// cfg.GroupConcurrency additionally runs that many local node groups
// alongside the fleet; 0 means classes run remotely only. cfg.Algorithm
// must be DivideAndConquer — the other drivers have no class queue to
// distribute.
func ComputeEFMsDistributed(n *Network, cfg Config, cancel <-chan struct{}, pool *distrib.Pool) (*Result, error) {
	if pool == nil || pool.Size() == 0 {
		return nil, fmt.Errorf("elmocomp: distributed run needs a worker pool")
	}
	if cfg.Algorithm != DivideAndConquer {
		return nil, fmt.Errorf("elmocomp: distributed runs require Algorithm == DivideAndConquer")
	}
	spec := distrib.JobSpec{
		Key:            RequestKey(n, cfg),
		Network:        n.Canonical(),
		KeepDuplicates: cfg.KeepDuplicateReactions,
		Tol:            cfg.Tolerance,
		MaxModes:       cfg.MaxIntermediateModes,
		Workers:        cfg.Workers,
		Nodes:          cfg.Nodes,
		Tree:           cfg.Test == CombinatorialTest,
		NoHybrid:       cfg.DisableHybridPrefilter,
		MemBudget:      cfg.MemBudgetBytes,
		CommTimeoutSec: cfg.CommTimeout.Seconds(),
	}
	return computeEFMs(n, cfg, cancel, func(q int) dnc.RemoteExecutor {
		spec.Q = q
		return pool.Bind(spec)
	})
}

// Canonical renders the network in its byte-stable canonical form: the
// parser input format with sorted external directives and normalized
// equations, such that ParseNetworkString(n.Canonical()) reproduces the
// identical string (the round-trip property the parser fuzz target
// enforces). Two Network values describing the same reactions — however
// the original source text was formatted — render identically, which
// makes the canonical form the network half of a content-addressed
// request key.
func (n *Network) Canonical() string { return n.inner.String() }

// RequestKey returns the content-addressed identity of a computation:
// a hex SHA-256 over the network's canonical form and the result-shaping
// subset of the configuration. Two requests with equal keys compute the
// same canonical mode set, so a result cache and an in-flight request
// coalescer can key on it.
//
// Execution-shape options that are proven result-neutral — Workers,
// Nodes, GroupConcurrency, OverTCP, CommTimeout, DisableHybridPrefilter,
// MemBudgetBytes, SpillDir, StoreTier, Progress — are excluded: a
// 1-worker serial run and an 8-node cluster
// run of the same request share one key (the differential harness
// enforces exactly this fingerprint equality). When MaxIntermediateModes
// is 0 the algorithm choice itself is result-neutral too (every driver
// enumerates the full set) and Algorithm, Qsub and Partition are
// likewise normalized away; with a budget set they shape which classes
// go unresolved, so they are part of the identity.
//
// Backend is normalized away for the exhaustive families: the
// reverse-search backend rejects MaxIntermediateModes (it has no
// intermediate matrices to budget), so every revsearch run is
// exhaustive and its canonical mode set is bitwise identical to the
// double-description result — the cross-family differential harness
// makes that fingerprint equality a CI invariant. A cached
// double-description result therefore serves a revsearch request and
// vice versa. The same holds for an on-demand run with MaxModes == 0
// (exhaustion yields the identical set, whatever the objective ranked
// first), so it too shares the batch key. But an on-demand request
// with MaxModes > 0 returns only the k objective-best modes — k and
// the canonicalized objective ARE the result's identity, so they are
// hashed in. Partial results are scenario-dependent by design; that is
// the one place Backend leaks into the key.
func RequestKey(n *Network, cfg Config) string {
	h := sha256.New()
	io.WriteString(h, "elmocomp/request-key/v1\n")
	canon := n.Canonical()
	fmt.Fprintf(h, "network %d\n", len(canon))
	io.WriteString(h, canon)

	alg, qsub, partition := int(cfg.Algorithm), cfg.Qsub, strings.Join(cfg.Partition, ",")
	if cfg.MaxIntermediateModes == 0 {
		alg, qsub, partition = 0, 0, ""
	} else {
		if cfg.Algorithm != DivideAndConquer {
			qsub, partition = 0, ""
		} else if qsub == 0 && partition == "" {
			qsub = 2 // the documented default partition size
		}
	}
	tol := cfg.Tolerance
	if tol == 0 {
		tol = 1e-9 // the documented default zero tolerance
	}
	split := cfg.SplitReversible || cfg.Test == CombinatorialTest
	fmt.Fprintf(h, "\nalg=%d qsub=%d partition=%q test=%d split=%v tol=%g maxmodes=%d keepdup=%v noroworder=%v norevlast=%v\n",
		alg, qsub, partition, cfg.Test, split, tol, cfg.MaxIntermediateModes,
		cfg.KeepDuplicateReactions, cfg.DisableRowOrdering, cfg.DisableReversibleLast)
	if cfg.Backend == OnDemandBackend && cfg.MaxModes > 0 {
		fmt.Fprintf(h, "ondemand k=%d objective=%s\n", cfg.MaxModes, canonicalObjective(cfg.Objective))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// canonicalObjective renders an objective map byte-stably: reaction
// names sorted, weights normalized through big.Rat so "2/4" and "1/2"
// (or "0.5") hash identically. A weight that does not parse is passed
// through verbatim — the compute path rejects it with a real error, so
// the key only needs to be deterministic, not valid.
func canonicalObjective(obj map[string]string) string {
	if len(obj) == 0 {
		return ""
	}
	names := make([]string, 0, len(obj))
	for name := range obj {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, name := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		val := obj[name]
		if w, ok := new(big.Rat).SetString(val); ok {
			val = w.RatString()
		}
		fmt.Fprintf(&b, "%s=%s", name, val)
	}
	return b.String()
}

// OnDemandPrefixKey returns the identity of an on-demand request FAMILY:
// RequestKey with the stream bound k elided. Every MaxModes setting of
// one (network, config, objective) triple shares this key, and — because
// the ranked stream is a pure function of that triple — a completed run
// of k modes is byte-for-byte the prefix of any longer run. The job
// service's prefix cache exploits exactly that: a stored k=10 result
// serves any k' <= 10 request by truncation, without recomputing.
func OnDemandPrefixKey(n *Network, cfg Config) string {
	base := cfg
	base.MaxModes = 0 // exhaustive request: hashes to the shared batch key
	h := sha256.New()
	io.WriteString(h, "elmocomp/ondemand-prefix/v1\n")
	io.WriteString(h, RequestKey(n, base))
	fmt.Fprintf(h, "\nobjective=%s\n", canonicalObjective(cfg.Objective))
	return hex.EncodeToString(h.Sum(nil))
}

// EncodeSupports serializes the result's canonical support list into the
// versioned mode-set byte stream (ModeSet.Encode): one bit-only mode per
// EFM over the reduced network's columns. Together with
// ResultFromEncodedSupports it is the storage codec of the job service's
// content-addressed result cache — the payload is a pure function of the
// computed mode set, independent of which driver produced it.
func (r *Result) EncodeSupports() []byte {
	q := 0
	if r.red != nil {
		q = r.red.N.Cols()
	}
	set := core.NewModeSet(q, q, nil)
	set.Grow(len(r.supports))
	var words []uint64
	for _, b := range r.supports {
		if cap(words) < b.Words() {
			words = make([]uint64, b.Words())
		}
		words = words[:b.Words()]
		for w := range words {
			words[w] = b.Word(w)
		}
		set.AppendMode(words, nil, nil, 0)
	}
	return set.Encode()
}

// ResultFromEncodedSupports reconstructs a Result from a cached
// EncodeSupports payload: the network is reduced exactly as a fresh run
// would reduce it (KeepDuplicateReactions is honored), the payload is
// decoded and validated against the reduction's column count, and the
// supports are adopted verbatim. The returned Result serves supports,
// fluxes, participation counts and verification like a computed one; its
// run statistics (candidate counts, phases, iterations) are zero —
// nothing was run. Callers holding the original run's fingerprint should
// compare it against the reconstructed Result.Fingerprint() to detect
// cache corruption end to end.
func ResultFromEncodedSupports(n *Network, cfg Config, payload []byte) (*Result, error) {
	red, err := reduce.Network(n.inner, reduce.Options{MergeDuplicates: !cfg.KeepDuplicateReactions})
	if err != nil {
		return nil, err
	}
	set, err := core.DecodeModeSet(payload)
	if err != nil {
		return nil, err
	}
	if set.Q() != red.N.Cols() {
		return nil, fmt.Errorf("elmocomp: cached supports span %d columns, reduction has %d — stale payload", set.Q(), red.N.Cols())
	}
	if set.FirstRow() != set.Q() || len(set.RevRows()) != 0 {
		return nil, fmt.Errorf("elmocomp: payload is an intermediate mode set, not a support list")
	}
	supports := make([]bitset.Set, set.Len())
	for i := range supports {
		supports[i] = set.Support(i)
	}
	return &Result{network: n.inner, red: red, supports: supports}, nil
}
