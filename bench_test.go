package elmocomp

// Benchmarks regenerating the paper's tables and figures at bench scale,
// plus ablations of the design choices DESIGN.md calls out. Workloads
// are deterministic; run with
//
//	go test -bench=. -benchmem
//
// Mapping to the paper:
//
//	BenchmarkFig2Toy            — the worked example of Figures 1–2
//	BenchmarkTable2Nodes*       — Table II (Algorithm 2 vs node count)
//	BenchmarkTable3DnC          — Table III (Algorithm 3, qsub=2)
//	BenchmarkTable4Budgeted     — Table IV (adaptive re-split under budget)
//	BenchmarkCandReductionQsub* — §IV-A candidate-count reduction sweep
//	BenchmarkMemory*            — §IV-B per-node memory accounting
//
// Ablations:
//
//	BenchmarkRowOrdering{On,Off}     — fewest-nonzeros-first heuristic
//	BenchmarkReversibleLast{On,Off}  — reversible-rows-last heuristic
//	BenchmarkRankVsTree{Rank,Tree}   — algebraic rank test vs bit-pattern tree
//	BenchmarkPartitionChoice{Auto,First} — D&C partition selection
//	BenchmarkTransport{Chan,TCP}     — cluster transport cost

import (
	"fmt"
	"sync"
	"testing"

	"elmocomp/internal/synth"
)

// benchNet returns the deterministic medium workload shared by the
// benches (a few thousand EFMs; seconds per op).
var benchNet = sync.OnceValues(func() (*Network, error) {
	n, err := synth.Network(synth.Params{
		Layers: 4, Width: 4, CrossLinks: 8,
		ReversibleFraction: 0.25, MaxCoef: 2, Seed: 42,
	})
	if err != nil {
		return nil, err
	}
	return ParseNetworkString(n.String())
})

func mustBenchNet(b *testing.B) *Network {
	b.Helper()
	n, err := benchNet()
	if err != nil {
		b.Fatal(err)
	}
	return n
}

func runBench(b *testing.B, net *Network, cfg Config) *Result {
	b.Helper()
	var res *Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = ComputeEFMs(net, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Len()), "EFMs")
	b.ReportMetric(float64(res.CandidateModes), "candidates")
	return res
}

func BenchmarkFig2Toy(b *testing.B) {
	net, err := Builtin("toy")
	if err != nil {
		b.Fatal(err)
	}
	res := runBench(b, net, Config{})
	if res.Len() != 8 {
		b.Fatalf("toy EFMs = %d", res.Len())
	}
}

func benchmarkTable2(b *testing.B, nodes int) {
	res := runBench(b, mustBenchNet(b), Config{Algorithm: Parallel, Nodes: nodes})
	b.ReportMetric(float64(res.CommBytes), "commBytes")
	b.ReportMetric(res.Phases.GenerateCandidates, "genSec")
	b.ReportMetric(res.Phases.RankTests, "rankSec")
	b.ReportMetric(res.Phases.Communicate, "commSec")
	b.ReportMetric(res.Phases.Merge, "mergeSec")
}

func BenchmarkTable2Nodes1(b *testing.B) { benchmarkTable2(b, 1) }
func BenchmarkTable2Nodes2(b *testing.B) { benchmarkTable2(b, 2) }
func BenchmarkTable2Nodes4(b *testing.B) { benchmarkTable2(b, 4) }
func BenchmarkTable2Nodes8(b *testing.B) { benchmarkTable2(b, 8) }

// benchmarkWorkers measures the shared-memory worker layer on the serial
// driver (no cluster simulation in the way): the ISSUE's BenchmarkWorkers4
// vs BenchmarkWorkers1 speedup target reads off these.
func benchmarkWorkers(b *testing.B, workers int) {
	res := runBench(b, mustBenchNet(b), Config{Workers: workers})
	b.ReportMetric(float64(res.PeakNodeBytes), "peakBytes")
}

func BenchmarkWorkers1(b *testing.B) { benchmarkWorkers(b, 1) }
func BenchmarkWorkers2(b *testing.B) { benchmarkWorkers(b, 2) }
func BenchmarkWorkers4(b *testing.B) { benchmarkWorkers(b, 4) }
func BenchmarkWorkers8(b *testing.B) { benchmarkWorkers(b, 8) }

func BenchmarkTable3DnC(b *testing.B) {
	res := runBench(b, mustBenchNet(b), Config{
		Algorithm: DivideAndConquer, Qsub: 2, Nodes: 4,
	})
	b.ReportMetric(float64(res.PeakNodeBytes), "peakBytes")
}

func BenchmarkTable4Budgeted(b *testing.B) {
	// The Table IV mechanism at bench scale: a deliberately tight budget
	// forces adaptive re-splitting.
	net := mustBenchNet(b)
	serial, err := ComputeEFMs(net, Config{})
	if err != nil {
		b.Fatal(err)
	}
	res := runBench(b, net, Config{
		Algorithm:            DivideAndConquer,
		Qsub:                 2,
		MaxIntermediateModes: serialPeakModes(serial) / 2,
	})
	// With a tight budget classes either complete after re-splitting or
	// are reported unresolved at the depth limit — both demonstrate the
	// Table IV mechanism. Completed results must never exceed (or, when
	// everything resolved, differ from) the serial set.
	unresolved := false
	for _, s := range res.Subproblems {
		if s.Unresolved {
			unresolved = true
		}
	}
	if !unresolved && res.Len() != serial.Len() {
		b.Fatalf("budgeted D&C lost modes: %d vs %d", res.Len(), serial.Len())
	}
	if res.Len() > serial.Len() {
		b.Fatalf("budgeted D&C invented modes: %d vs %d", res.Len(), serial.Len())
	}
}

// serialPeakModes estimates the serial run's peak intermediate column
// count from its iteration stats.
func serialPeakModes(res *Result) int {
	peak := 0
	for _, it := range res.Iterations {
		if it.ModesOut > peak {
			peak = it.ModesOut
		}
	}
	if peak < 8 {
		peak = 8
	}
	return peak
}

func benchmarkQsub(b *testing.B, qsub int) {
	cfg := Config{}
	if qsub > 0 {
		cfg = Config{Algorithm: DivideAndConquer, Qsub: qsub}
	}
	runBench(b, mustBenchNet(b), cfg)
}

func BenchmarkCandReductionQsub0(b *testing.B) { benchmarkQsub(b, 0) }
func BenchmarkCandReductionQsub1(b *testing.B) { benchmarkQsub(b, 1) }
func BenchmarkCandReductionQsub2(b *testing.B) { benchmarkQsub(b, 2) }
func BenchmarkCandReductionQsub3(b *testing.B) { benchmarkQsub(b, 3) }

func BenchmarkMemoryAlg2(b *testing.B) {
	res := runBench(b, mustBenchNet(b), Config{Algorithm: Parallel, Nodes: 4})
	b.ReportMetric(float64(res.PeakNodeBytes), "peakBytes")
}

func BenchmarkMemoryAlg3(b *testing.B) {
	res := runBench(b, mustBenchNet(b), Config{Algorithm: DivideAndConquer, Qsub: 3})
	b.ReportMetric(float64(res.PeakNodeBytes), "peakBytes")
}

// --- ablations ---

func BenchmarkRowOrderingOn(b *testing.B) { runBench(b, mustBenchNet(b), Config{}) }
func BenchmarkRowOrderingOff(b *testing.B) {
	runBench(b, mustBenchNet(b), Config{DisableRowOrdering: true})
}

func BenchmarkReversibleLastOn(b *testing.B) { runBench(b, mustBenchNet(b), Config{}) }
func BenchmarkReversibleLastOff(b *testing.B) {
	runBench(b, mustBenchNet(b), Config{DisableReversibleLast: true})
}

func BenchmarkRankVsTreeRank(b *testing.B) { runBench(b, mustBenchNet(b), Config{Test: RankTest}) }
func BenchmarkRankVsTreeTree(b *testing.B) {
	runBench(b, mustBenchNet(b), Config{Test: CombinatorialTest})
}

func BenchmarkPartitionChoiceAuto(b *testing.B) {
	runBench(b, mustBenchNet(b), Config{Algorithm: DivideAndConquer, Qsub: 2})
}

func BenchmarkPartitionChoiceFirst(b *testing.B) {
	// Adversarial choice: partition on the first two reactions that
	// survive reduction instead of the reordered kernel's tail rows.
	net := mustBenchNet(b)
	probe, err := ComputeEFMs(net, Config{MaxIntermediateModes: 0})
	if err != nil {
		b.Fatal(err)
	}
	_ = probe
	// Reaction names R1.. exist in the synthetic generator's output;
	// find two that survive reduction by trying candidates in order.
	var partition []string
	for i := 1; len(partition) < 2 && i < net.NumReactions()+2; i++ {
		for _, suffix := range []string{"", "r"} {
			name := fmt.Sprintf("R%d%s", i, suffix)
			trial := Config{Algorithm: DivideAndConquer, Partition: append(append([]string{}, partition...), name)}
			if _, err := ComputeEFMs(net, trial); err == nil {
				partition = append(partition, name)
				break
			}
		}
	}
	if len(partition) < 2 {
		b.Skip("could not find surviving reactions for the adversarial partition")
	}
	runBench(b, net, Config{Algorithm: DivideAndConquer, Partition: partition})
}

func BenchmarkTransportChan(b *testing.B) {
	runBench(b, mustBenchNet(b), Config{Algorithm: Parallel, Nodes: 2})
}

func BenchmarkTransportTCP(b *testing.B) {
	runBench(b, mustBenchNet(b), Config{Algorithm: Parallel, Nodes: 2, OverTCP: true})
}
